package experiments

import (
	"fmt"

	"cable/internal/energy"
	"cable/internal/sim"
	"cable/internal/stats"
)

func timingCfg(opt Options, scheme, bench string, totalTh int) sim.TimingConfig {
	cfg := sim.DefaultTimingConfig(scheme, bench)
	cfg.TotalTh = totalTh
	if opt.Quick {
		cfg.Threads = 4
		cfg.InstrPerTh = 250_000
		cfg.LLCPerThread = 64 << 10
	} else {
		cfg.Threads = 8
		cfg.InstrPerTh = 600_000
		cfg.LLCPerThread = 128 << 10
		// The paper's 4 MB-per-thread L4 absorbs most post-LLC misses,
		// keeping the off-chip link (not DRAM) the bottleneck; at our
		// scaled-down cache sizes that requires a deeper L4 ratio.
		cfg.L4Ratio = 8
	}
	return cfg
}

// speedupSet runs the uncompressed baseline and each scheme — all
// independent timing runs, fanned across the cell pool — returning
// throughput ratios.
func speedupSet(opt Options, schemes []string, bench string, totalTh int) (map[string]float64, error) {
	runs := make([]*sim.TimingResult, len(schemes)+1)
	errs := make([]error, len(runs))
	cellRun(opt.workers(), len(runs), func(i int) {
		scheme := "none"
		if i > 0 {
			scheme = schemes[i-1]
		}
		runs[i], errs[i] = runTiming(opt, timingCfg(opt, scheme, bench, totalTh))
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(schemes))
	for i, s := range schemes {
		out[s] = runs[i+1].Throughput / runs[0].Throughput
	}
	return out, nil
}

// Fig14a is the per-benchmark throughput speedup at 2048 threads.
func Fig14a(opt Options) (*Result, error) {
	schemes := []string{"cpack", "gzip", "cable"}
	t := stats.NewTable("Fig 14a: throughput speedup at 2048 threads", schemes...)
	names := benchSubset(opt, false)
	if opt.Quick {
		names = []string{"mcf", "lbm", "omnetpp", "soplex", "gobmk", "povray"}
	}
	sets := make([]map[string]float64, len(names))
	errs := make([]error, len(names))
	cellRun(opt.workers(), len(names), func(i int) {
		sets[i], errs[i] = speedupSet(opt, schemes, names[i], 2048)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for i, name := range names {
		for s, v := range sets[i] {
			t.Set(name, s, v)
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig14a", Table: t, Notes: []string{
		"paper: CABLE 3.78x mean at 2048 threads; memory-bound (mcf, lbm) gain most, compute-bound (povray, gobmk) flat",
	}}, nil
}

// Fig14b sweeps thread count: speedups appear once bandwidth is
// oversubscribed.
func Fig14b(opt Options) (*Result, error) {
	schemes := []string{"cpack", "gzip", "cable"}
	counts := []int{256, 512, 1024, 2048}
	names := []string{"mcf", "lbm", "omnetpp", "soplex", "milc", "libquantum"}
	if opt.Quick {
		counts = []int{256, 1024, 2048}
		names = names[:3]
	}
	t := stats.NewTable("Fig 14b: mean speedup vs thread count", schemes...)
	sets := make([]map[string]float64, len(counts)*len(names))
	errs := make([]error, len(sets))
	cellRun(opt.workers(), len(sets), func(k int) {
		sets[k], errs[k] = speedupSet(opt, schemes, names[k%len(names)], counts[k/len(names)])
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for ci, n := range counts {
		agg := map[string][]float64{}
		for ni := range names {
			for s, v := range sets[ci*len(names)+ni] {
				agg[s] = append(agg[s], v)
			}
		}
		for s, vs := range agg {
			t.Set(fmt.Sprintf("%d threads", n), s, stats.Mean(vs))
		}
	}
	return &Result{ID: "fig14b", Table: t, Notes: []string{
		"paper: marginal at 256 threads; CABLE pulls ahead at high thread counts",
	}}, nil
}

// singleThreadCfg gives one thread ample bandwidth: latency is the only
// compression cost (Fig 17's setting).
func singleThreadCfg(opt Options, scheme, bench string) sim.TimingConfig {
	cfg := timingCfg(opt, scheme, bench, 16)
	cfg.Threads = 1
	cfg.TotalTh = 16
	cfg.TotalLinkBW = 19.2e9 * 16 // one uncontended channel's worth per thread
	cfg.SampleWindowSec = 20e-6   // scaled runs simulate ≪1ms of wall time
	return cfg
}

// Fig17 measures single-thread slowdown from compression latencies.
func Fig17(opt Options) (*Result, error) {
	schemes := []string{"cpack", "gzip", "cable"}
	t := stats.NewTable("Fig 17: single-thread degradation (fraction)", schemes...)
	names := benchSubset(opt, false)
	if opt.Quick {
		names = []string{"mcf", "omnetpp", "soplex", "gcc", "povray"}
	}
	all := append([]string{"none"}, schemes...)
	runs := make([]*sim.TimingResult, len(names)*len(all))
	errs := make([]error, len(runs))
	cellRun(opt.workers(), len(runs), func(k int) {
		runs[k], errs[k] = runTiming(opt, singleThreadCfg(opt, all[k%len(all)], names[k/len(all)]))
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for ni, name := range names {
		base := runs[ni*len(all)]
		for si, s := range schemes {
			res := runs[ni*len(all)+si+1]
			t.Set(name, s, 1-res.IPCPerThread/base.IPCPerThread)
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig17", Table: t, Notes: []string{
		"paper: overhead proportional to comp+decomp latency; CABLE ≈5% mean, 10% max",
	}}, nil
}

// Fig18 is the normalized memory-subsystem energy breakdown, baseline
// vs CABLE+LBE.
func Fig18(opt Options) (*Result, error) {
	t := stats.NewTable("Fig 18: energy (normalized to baseline total)",
		"base-sram", "base-link", "base-dram", "cable-sram", "cable-link", "cable-dram", "cable-comp", "cable-total")
	names := benchSubset(opt, false)
	if opt.Quick {
		names = []string{"mcf", "omnetpp", "soplex", "gobmk"}
	}
	p := energy.Default()
	runs := make([]*sim.TimingResult, len(names)*2)
	errs := make([]error, len(runs))
	cellRun(opt.workers(), len(runs), func(k int) {
		scheme := "none"
		if k%2 == 1 {
			scheme = "cable"
		}
		runs[k], errs[k] = runTiming(opt, singleThreadCfg(opt, scheme, names[k/2]))
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for ni, name := range names {
		base, cable := runs[2*ni], runs[2*ni+1]
		toCounts := func(r *sim.TimingResult) energy.Counts {
			return energy.Counts{
				Seconds:     r.Seconds,
				L1Accesses:  r.L1Accesses,
				L2Accesses:  r.L2Accesses,
				LLCAccesses: r.LLCAccesses,
				BufAccesses: r.L4Accesses,
				DRAMAccess:  r.DRAMAccesses,
				LinkBytes:   r.WireBytes,
				CompOps:     r.CompOps,
				DecompOps:   r.DecompOps,
			}
		}
		be := p.Compute(toCounts(base), 0)
		ce := p.Compute(toCounts(cable), cable.SearchReads)
		norm := be.Total()
		t.Set(name, "base-sram", (be.SRAMStatic+be.SRAMDynamic)/norm)
		t.Set(name, "base-link", be.Link/norm)
		t.Set(name, "base-dram", be.DRAM/norm)
		t.Set(name, "cable-sram", (ce.SRAMStatic+ce.SRAMDynamic)/norm)
		t.Set(name, "cable-link", ce.Link/norm)
		t.Set(name, "cable-dram", ce.DRAM/norm)
		t.Set(name, "cable-comp", (ce.CompEngine+ce.CompSRAM)/norm)
		t.Set(name, "cable-total", ce.Total()/norm)
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig18", Table: t, Notes: []string{
		"paper: link ≈20% of subsystem energy; CABLE saves ~16% total, compression energy small",
	}}, nil
}

// OnOff evaluates the §VI-D adaptive control.
func OnOff(opt Options) (*Result, error) {
	t := stats.NewTable("§VI-D: on/off control", "always-on-loss", "adaptive-loss", "off-windows")
	names := []string{"omnetpp", "soplex", "gcc"}
	if opt.Quick {
		names = names[:2]
	}
	runs := make([]*sim.TimingResult, len(names)*3)
	errs := make([]error, len(runs))
	cellRun(opt.workers(), len(runs), func(k int) {
		name := names[k/3]
		switch k % 3 {
		case 0:
			runs[k], errs[k] = runTiming(opt, singleThreadCfg(opt, "none", name))
		case 1:
			runs[k], errs[k] = runTiming(opt, singleThreadCfg(opt, "cable", name))
		case 2:
			acfg := singleThreadCfg(opt, "cable", name)
			acfg.OnOff = true
			runs[k], errs[k] = runTiming(opt, acfg)
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for ni, name := range names {
		base, always, adaptive := runs[3*ni], runs[3*ni+1], runs[3*ni+2]
		t.Set(name, "always-on-loss", 1-always.IPCPerThread/base.IPCPerThread)
		t.Set(name, "adaptive-loss", 1-adaptive.IPCPerThread/base.IPCPerThread)
		t.Set(name, "off-windows", float64(adaptive.OffWindows))
	}
	t.AddMeanRow("mean")
	return &Result{ID: "onoff", Table: t, Notes: []string{
		"paper: on/off control nullifies single-thread loss at a 2.3% mean throughput cost",
	}}, nil
}
