package experiments

import (
	"fmt"
	"strings"

	"cable/internal/stats"
)

// This file is the declarative-workload experiment (`-exp workload`):
// the memory-link driver fed by a workload spec (-workload-spec), by
// recorded cabletrace captures (-replay), or by both (a spec replayed
// from its per-client captures). Rows are the run's program slots —
// spec clients or captures — so the per-scheme ratio table shows how
// each member of the mix compressed under the shared LLC/L4 pair.

// workloadAccesses picks the per-program access budget for the
// workload experiment: the standard budget, capped so replayed
// captures cover the whole run. The cap depends only on the captures
// (which are folded into the cell digest), so it is deterministic.
func workloadAccesses(opt Options) int {
	per := accesses(opt)
	if len(opt.Replay) == 0 {
		return per
	}
	if opt.Workload != nil {
		// Spec replay: captures are consumed by arrival order, not
		// round-robin, so the budget is the total record count split
		// over the clients (exact for RecordClients output).
		total := 0
		for _, t := range opt.Replay {
			total += len(t.Accesses)
		}
		if n := total / len(opt.Workload.Clients); n < per {
			per = n
		}
		return per
	}
	for _, t := range opt.Replay {
		if len(t.Accesses) < per {
			per = len(t.Accesses)
		}
	}
	return per
}

// Workload runs the spec/replay study. With neither source configured
// it returns an explanatory placeholder instead of failing, so plain
// `cablereport` runs (which execute every experiment) stay green.
func Workload(opt Options) (*Result, error) {
	if opt.Workload == nil && len(opt.Replay) == 0 {
		t := stats.NewTable("Workload: declarative mix / trace replay", memLinkSchemes...)
		return &Result{ID: "workload", Table: t, Notes: []string{
			"no workload source configured: pass -workload-spec FILE and/or -replay FILE[,FILE...]",
		}}, nil
	}
	cfg := memLinkCfg(opt)
	cfg.Workload = opt.Workload
	cfg.Replay = opt.Replay
	cfg.AccessesPerProgram = workloadAccesses(opt)
	res, err := runMemLink(opt, cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Workload: declarative mix / trace replay", memLinkSchemes...)
	rows := uniqueRows(res.Programs)
	for i, row := range rows {
		for _, s := range memLinkSchemes {
			t.Set(row, s, res.PerProgram[s][i].Value())
		}
	}
	for _, s := range memLinkSchemes {
		t.Set("total", s, res.Ratio(s))
	}
	notes := []string{
		fmt.Sprintf("%s, %d accesses per program slot", workloadSourceNote(opt), cfg.AccessesPerProgram),
		"per-row ratios split the shared link's traffic by owning program; total is the whole stream",
	}
	return &Result{ID: "workload", Table: t, Notes: notes}, nil
}

// uniqueRows disambiguates duplicate program labels (two captures of
// the same benchmark) so each table row stays addressable.
func uniqueRows(programs []string) []string {
	seen := map[string]int{"total": 1}
	rows := make([]string, len(programs))
	for i, p := range programs {
		row := p
		if n := seen[p]; n > 0 {
			row = fmt.Sprintf("%s#%d", p, n)
		}
		seen[p]++
		rows[i] = row
	}
	return rows
}

func workloadSourceNote(opt Options) string {
	switch {
	case opt.Workload != nil && len(opt.Replay) > 0:
		return fmt.Sprintf("spec %q replayed from %d per-client captures", opt.Workload.Name, len(opt.Replay))
	case opt.Workload != nil:
		ids := make([]string, len(opt.Workload.Clients))
		for i, c := range opt.Workload.Clients {
			ids[i] = c.ID
		}
		return fmt.Sprintf("spec %q, live clients %s", opt.Workload.Name, strings.Join(ids, "+"))
	default:
		names := make([]string, len(opt.Replay))
		for i, t := range opt.Replay {
			names[i] = t.Header.Benchmark
		}
		return fmt.Sprintf("replayed captures %s", strings.Join(names, "+"))
	}
}
