package experiments

import (
	"sync"
	"time"

	"cable/internal/obs"
	"cable/internal/sim"
	"cable/internal/stats"
	"cable/internal/topo"
)

// This file is the cross-experiment cell cache: many drivers evaluate
// overlapping (benchmark, scheme, config) cells — the sensitivity
// sweeps all contain the default point, fig11/fig12 share every cell,
// headline re-runs the fig12 suite — so RunAll pays for the same
// simulation several times. The memo keys cells by the sim package's
// canonical config digest and computes each distinct cell exactly once
// per process, with single-flight de-duplication so concurrent
// requesters of the same cell wait for one compute instead of racing.
//
// Bit-identity is preserved by construction, not by luck:
//
//   - Results: the simulations are deterministic, so replaying a stored
//     result is byte-equal to recomputing it. Requesters receive fresh
//     deep copies, never shared maps.
//   - Metrics: a memoized compute runs against a private obs.Registry
//     and stores the non-volatile snapshot delta. EVERY logical request
//     — the computing miss and every subsequent hit — merges that same
//     delta into the default registry, so counter totals (and the
//     metric name set) in `-metrics` dumps match a memo-disabled run
//     exactly, at any -parallel setting.
//   - Hit/miss counts: single-flight makes misses equal the number of
//     distinct digests and hits the remainder, independent of
//     scheduling, so the memo's own counters are deterministic too.
//
// Cells that attach a Tracer or a pre-built flight Recorder bypass the
// memo (the trace is a fresh side effect per run), as does
// Options.DisableCellMemo (the `-nomemo` CLI flag). Options.Flight
// composes with the memo instead: the single-flight compute owner
// attaches the cell's registered recorder, so the flight dump matches
// a memo-disabled run byte for byte (see flight.go).

// memoMaxEntries caps the memo's footprint (applied per stripe as
// memoMaxEntries/memoStripes). Reaching a stripe's cap clears that
// stripe: byte-identity is unaffected (the delta merge happens per
// request either way; a re-computed cell reproduces the same bits),
// only the time saved is lost. Full reports have a few hundred distinct
// cells, so the cap exists for pathological callers, not normal runs.
const memoMaxEntries = 4096

// memoStripes is the lock-striping factor. Under -parallel the old
// single mutex was the dominant contention point of a whole RunAll
// (mutex profiles attributed >60% of all lock wait to it); striping by
// digest makes concurrent lookups of distinct cells contend only when
// they hash to the same stripe. Power of two for cheap masking.
const memoStripes = 64

// memoEntry is one memoized cell. ready is closed once the compute
// finishes; the remaining fields are written before the close and read
// only after it (channel close establishes the happens-before edge).
type memoEntry struct {
	ready chan struct{}

	mem  *sim.MemLinkResult // slim copy: Chip is nil (no driver reads it)
	tim  *sim.TimingResult
	topo *topo.Result
	// delta is the cell's non-volatile metrics prepared against the
	// default registry, re-applied on every request for this cell. A
	// prepared delta resolves metric pointers once, so replays are
	// lock-free atomic adds instead of per-counter registry locking.
	delta obs.MergeDelta
	// savedBits is the cell's core.source_bits, precomputed so hits can
	// account saved work without a map lookup.
	savedBits uint64
	err       error
}

// memoStripe is one lock + map shard of the cell memo.
type memoStripe struct {
	mu      sync.Mutex
	entries map[sim.Digest]*memoEntry
}

type cellMemo struct {
	stripes [memoStripes]memoStripe
}

var memo cellMemo

// stripe picks the stripe for a digest. Digests are FNV-1a output, so
// any byte is uniformly mixed.
func (m *cellMemo) stripe(d sim.Digest) *memoStripe {
	return &m.stripes[uint32(d[0])&(memoStripes-1)]
}

// len counts memoized cells across all stripes (tests and the live
// metrics view).
func (m *cellMemo) len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// ResetCellMemo drops every memoized cell. Tests that compare metric
// dumps across runs reset the memo alongside obs.Default() so both
// runs see the same hit/miss sequence.
func ResetCellMemo() {
	for i := range memo.stripes {
		s := &memo.stripes[i]
		s.mu.Lock()
		s.entries = nil
		s.mu.Unlock()
	}
}

// memoCounters instruments the memo itself. Hit/miss/bypass counts are
// deterministic across -parallel (single-flight, see the file comment)
// but they describe the process's caching behavior, not the simulated
// workload — a `-nomemo` run legitimately has different values. They
// are therefore volatile: excluded from the deterministic `-metrics`
// dump (which stays byte-identical with the memo on or off) and
// visible live via `cablesim -http` and volatile snapshots.
type memoCounters struct {
	hits       *obs.Counter
	misses     *obs.Counter
	bypass     *obs.Counter
	savedBytes *obs.Counter   // simulated source bytes not re-encoded, from core.source_bits
	computeMS  *obs.Histogram // per-cell compute wall-clock, ms
}

var (
	memoCountersOnce   sync.Once
	sharedMemoCounters memoCounters
)

func memoMetrics() *memoCounters {
	memoCountersOnce.Do(func() {
		r := obs.Default()
		sharedMemoCounters = memoCounters{
			hits:       r.VolatileCounter("experiments.cellmemo_hits"),
			misses:     r.VolatileCounter("experiments.cellmemo_misses"),
			bypass:     r.VolatileCounter("experiments.cellmemo_bypass"),
			savedBytes: r.VolatileCounter("experiments.cellmemo_saved_bytes"),
			computeMS:  r.VolatileHistogram("experiments.cellmemo_compute_ms"),
		}
	})
	return &sharedMemoCounters
}

// lookup returns the entry for a digest and whether this caller owns
// the compute (miss). On a miss the caller MUST fill the entry and
// close ready, even on error — waiters block on it. Only the digest's
// stripe is locked, and only for the map access — computes run outside
// the lock (single-flight via the ready channel).
func (m *cellMemo) lookup(d sim.Digest) (*memoEntry, bool) {
	s := m.stripe(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[d]; ok {
		return e, false
	}
	if s.entries == nil {
		s.entries = make(map[sim.Digest]*memoEntry)
	} else if len(s.entries) >= memoMaxEntries/memoStripes {
		s.entries = make(map[sim.Digest]*memoEntry)
	}
	e := &memoEntry{ready: make(chan struct{})}
	s.entries[d] = e
	return e, true
}

// copyMemLinkResult deep-copies the shareable parts of a result. Chip
// is intentionally nil in memoized results: drivers read only the
// ratio/toggle maps.
func copyMemLinkResult(r *sim.MemLinkResult) *sim.MemLinkResult {
	if r == nil {
		return nil
	}
	out := &sim.MemLinkResult{
		Programs:   append([]string(nil), r.Programs...),
		Total:      make(map[string]stats.Ratio, len(r.Total)),
		PerProgram: make(map[string][]stats.Ratio, len(r.PerProgram)),
		Toggles:    make(map[string]uint64, len(r.Toggles)),
	}
	for k, v := range r.Total {
		out.Total[k] = v
	}
	for k, v := range r.PerProgram {
		out.PerProgram[k] = append([]stats.Ratio(nil), v...)
	}
	for k, v := range r.Toggles {
		out.Toggles[k] = v
	}
	return out
}

// finish publishes a request's observable effects: the prepared metrics
// delta is applied to the default registry (hit and miss alike, keeping
// totals equal to a memo-disabled run) and saved work is accounted on
// hits. Applying a prepared delta takes no locks.
func (e *memoEntry) finish(mx *memoCounters, hit bool, shard uint32) {
	e.delta.Apply(shard)
	if hit {
		mx.hits.Inc(shard)
		mx.savedBytes.Add(shard, e.savedBits/8)
	}
}

// seal stores the compute's metrics delta — prepared once against the
// default registry so every replay is lock-free — and publishes the
// entry to waiters.
func (e *memoEntry) seal(reg *obs.Registry) {
	snap := reg.Snapshot(false)
	e.savedBits = snap.Counters["core.source_bits"]
	e.delta = obs.Default().PrepareMerge(snap)
	close(e.ready)
}

// runMemLink is the memoizing front end every driver uses in place of
// sim.RunMemoryLink. Trace-attached configs bypass the memo.
func runMemLink(opt Options, cfg sim.MemLinkConfig) (*sim.MemLinkResult, error) {
	// Fault injection is applied here — the single choke point every
	// driver goes through — and before Digest(), so faulted cells key
	// separately from clean ones.
	cfg.Chip.Fault = opt.Fault
	mx := memoMetrics()
	shard := obs.NextShard()
	if opt.DisableCellMemo || cfg.Trace != nil || cfg.Metrics != nil || cfg.Recorder != nil {
		mx.bypass.Inc(shard)
		if opt.Flight != nil && cfg.Recorder == nil {
			// Memo-off flight recording: every run of a cell asks for
			// the cell's recorder; duplicates get throwaways, so the
			// registered content matches a memo-on run byte for byte.
			cfg.Recorder = opt.Flight.Recorder(memLinkFlightKey(cfg))
		}
		return sim.RunMemoryLink(cfg)
	}
	e, owner := memo.lookup(cfg.Digest())
	if !owner {
		<-e.ready
		e.finish(mx, true, shard)
		if opt.Flight != nil {
			opt.Flight.MemoEvent(true)
		}
		return copyMemLinkResult(e.mem), e.err
	}
	mx.misses.Inc(shard)
	reg := obs.NewRegistry()
	scoped := cfg
	scoped.Metrics = reg
	if opt.Flight != nil {
		// The single-flight compute owner is the one run of this cell,
		// so it feeds the cell's registered recorder.
		scoped.Recorder = opt.Flight.Recorder(memLinkFlightKey(cfg))
		opt.Flight.MemoEvent(false)
	}
	start := time.Now()
	res, err := sim.RunMemoryLink(scoped)
	mx.computeMS.Observe(uint64(time.Since(start).Milliseconds()))
	e.mem = copyMemLinkResult(res)
	e.err = err
	e.seal(reg)
	e.finish(mx, false, shard)
	if res != nil && res.Chip != nil {
		// The memoized copy dropped the chip; recycle its tables and
		// line backings for the next cell.
		res.Chip.Release()
	}
	return copyMemLinkResult(e.mem), err
}

// runTiming is the memoizing front end every driver uses in place of
// sim.RunTiming.
func runTiming(opt Options, cfg sim.TimingConfig) (*sim.TimingResult, error) {
	cfg.Fault = opt.Fault
	mx := memoMetrics()
	shard := obs.NextShard()
	if opt.DisableCellMemo || cfg.Metrics != nil || cfg.Recorder != nil {
		mx.bypass.Inc(shard)
		if opt.Flight != nil && cfg.Recorder == nil {
			cfg.Recorder = opt.Flight.Recorder(timingFlightKey(cfg))
		}
		return sim.RunTiming(cfg)
	}
	e, owner := memo.lookup(cfg.Digest())
	if !owner {
		<-e.ready
		e.finish(mx, true, shard)
		if opt.Flight != nil {
			opt.Flight.MemoEvent(true)
		}
		if e.tim == nil {
			return nil, e.err
		}
		out := *e.tim
		return &out, e.err
	}
	mx.misses.Inc(shard)
	reg := obs.NewRegistry()
	scoped := cfg
	scoped.Metrics = reg
	if opt.Flight != nil {
		scoped.Recorder = opt.Flight.Recorder(timingFlightKey(cfg))
		opt.Flight.MemoEvent(false)
	}
	start := time.Now()
	res, err := sim.RunTiming(scoped)
	mx.computeMS.Observe(uint64(time.Since(start).Milliseconds()))
	if res != nil {
		cp := *res
		e.tim = &cp
	}
	e.err = err
	e.seal(reg)
	e.finish(mx, false, shard)
	if e.tim == nil {
		return nil, err
	}
	out := *e.tim
	return &out, err
}
