package experiments

import (
	"cable/internal/cache"
	"cable/internal/core"
	"cable/internal/stats"
)

// Tab3 reproduces the Table III area arithmetic: hash-table and WMT
// storage as a percentage of the data cache, plus RemoteLID widths, for
// the off-chip (buffer + on-chip cache) and multi-chip configurations.
func Tab3(opt Options) (*Result, error) {
	t := stats.NewTable("Table III: CABLE area overheads",
		"hash-table-%", "wmt-%", "remotelid-bits")

	line := 64
	// Off-chip configuration: 8-way 8MB LLC on chip, 16-way 16MB
	// buffer (§IV-D).
	llc := cache.New(cache.Config{Name: "llc", SizeBytes: 8 << 20, Ways: 8, LineSize: line})
	buf := cache.New(cache.Config{Name: "buf", SizeBytes: 16 << 20, Ways: 16, LineSize: line})

	// Buffer side: half-sized hash table (§VI-A's memory-link
	// configuration) + the WMT.
	bufHT := core.NewHashTable(buf.NumLines()/2/2, 2)
	bufWMT := core.NewWMT(buf, llc)
	t.Set("off-chip buffer", "hash-table-%", pct(bufHT.SizeBits(buf.LineIDBits()), buf.Config().SizeBytes*8))
	t.Set("off-chip buffer", "wmt-%", pct(bufWMT.SizeBits(buf.WayBits()), buf.Config().SizeBytes*8))
	t.Set("off-chip buffer", "remotelid-bits", float64(llc.LineIDBits()))

	// On-chip cache side: full-sized hash table over LLC lines, no
	// WMT (only home caches keep one); its pointers address the
	// buffer (18-bit HomeLIDs).
	llcHT := core.NewHashTable(llc.NumLines()/2, 2)
	t.Set("on-chip cache", "hash-table-%", pct(llcHT.SizeBits(llc.LineIDBits()), llc.Config().SizeBytes*8))
	t.Set("on-chip cache", "remotelid-bits", float64(buf.LineIDBits()))

	// Multi-chip configuration: 8-way 8MB LLCs both sides,
	// quarter-sized hash tables, one full-sized WMT per link pair
	// (three links per chip in a 4-node system).
	nodeLLC := cache.New(cache.Config{Name: "node", SizeBytes: 8 << 20, Ways: 8, LineSize: line})
	mcHT := core.NewHashTable(nodeLLC.NumLines()/4/2, 2)
	mcWMT := core.NewWMT(nodeLLC, nodeLLC)
	t.Set("multi-chip LLC", "hash-table-%", pct(mcHT.SizeBits(nodeLLC.LineIDBits()), nodeLLC.Config().SizeBytes*8))
	t.Set("multi-chip LLC", "wmt-%", 3*pct(mcWMT.SizeBits(nodeLLC.WayBits()), nodeLLC.Config().SizeBytes*8))
	t.Set("multi-chip LLC", "remotelid-bits", float64(nodeLLC.LineIDBits()))

	return &Result{ID: "tab3", Table: t, Notes: []string{
		"paper Table III: buffer HT 1.76%, on-chip HT 3.32%, multi-chip HT 2.50%; WMT 0.4% / 1.74%; RemoteLIDs 17b/18b/17b",
		"logic overhead (synthesized, not modeled here): 1.48% of an OpenPiton L2 slice",
	}}, nil
}

func pct(bits, totalBits int) float64 { return 100 * float64(bits) / float64(totalBits) }
