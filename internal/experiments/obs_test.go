package experiments

import (
	"bytes"
	"math"
	"testing"

	"cable/internal/obs"
)

// runAndSnapshot resets the global registry AND the cell memo, runs the
// given experiments at the given parallelism, and returns the
// deterministic JSON dump. The memo must reset with the registry so
// both runs see the same hit/miss sequence (first request per distinct
// cell is the miss).
func runAndSnapshot(t *testing.T, ids []string, parallelism int) []byte {
	t.Helper()
	obs.Default().Reset()
	ResetCellMemo()
	if _, err := RunAll(ids, Options{Quick: true, Parallelism: parallelism}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.Default().WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMetricsDeterministicAcrossParallelism is the -metrics contract:
// the non-volatile registry dump for a fixed workload is byte-identical
// whether the cells ran serially or across a pool.
func TestMetricsDeterministicAcrossParallelism(t *testing.T) {
	ids := []string{"fig21", "tab3"}
	serial := runAndSnapshot(t, ids, 1)
	parallel := runAndSnapshot(t, ids, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("metrics dump differs between -parallel 1 and 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !bytes.Contains(serial, []byte("core.fills")) {
		t.Fatalf("dump missing hot-path counters:\n%s", serial)
	}
}

// TestBreakdownShape checks the coverage table's invariants: every
// benchmark row's class fractions sum to 1, the skip fraction is a
// fraction, and bits/line is positive and below a raw line.
func TestBreakdownShape(t *testing.T) {
	res, err := Breakdown(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table
	classCols := []string{"raw", "standalone", "diff-1ref", "diff-2ref", "diff-3ref"}
	rows := tab.Rows()
	if len(rows) < 2 || rows[len(rows)-1] != "mean" {
		t.Fatalf("rows = %v", rows)
	}
	for _, row := range rows {
		var sum float64
		for _, c := range classCols {
			v := tab.Get(row, c)
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("%s/%s = %v", row, c, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s class fractions sum to %v", row, sum)
		}
		if s := tab.Get(row, "skip"); s < 0 || s > 1 {
			t.Fatalf("%s skip = %v", row, s)
		}
		if bl := tab.Get(row, "bits/line"); bl <= 0 || bl > 64*8+8 {
			t.Fatalf("%s bits/line = %v", row, bl)
		}
	}
}
