package experiments

import (
	"fmt"

	"cable/internal/sim"
	"cable/internal/stats"
)

// Ablation isolates the design choices the paper argues for but does
// not sweep directly:
//
//   - pointer width: 17-bit RemoteLIDs vs 40-bit tags (§III-D claims a
//     57.5% pointer reduction; here the same payload stream is
//     re-accounted with tag-wide pointers),
//   - hash bucket depth (2 in the paper; deeper buckets admit more
//     candidates but more collisions),
//   - insert-signature count (2 in the paper; more signatures make
//     lines easier to find but pollute buckets, §III-B).
func Ablation(opt Options) (*Result, error) {
	t := stats.NewTable("Ablation: CABLE design choices", "ratio")
	names := sweepSubset(opt)

	mean := func(mutate func(*sim.MemLinkConfig)) (float64, error) {
		var vs []float64
		for _, name := range names {
			cfg := memLinkCfg(opt, name)
			cfg.WithMeters = false
			mutate(&cfg)
			res, err := sim.RunMemoryLink(cfg)
			if err != nil {
				return 0, err
			}
			vs = append(vs, res.Ratio("cable"))
		}
		return stats.Mean(vs), nil
	}

	base, err := mean(func(*sim.MemLinkConfig) {})
	if err != nil {
		return nil, err
	}
	t.Set("baseline (17b LIDs, depth 2, 2 sigs)", "ratio", base)

	// Pointer width: re-account the same traffic with 40-bit tags per
	// reference. The encoder decisions shift too (wider pointers make
	// references less attractive), which the paper's WMT avoids.
	tagPointers, err := meanWithTagPointers(opt, names)
	if err != nil {
		return nil, err
	}
	t.Set("40b tag pointers (no WMT)", "ratio", tagPointers)

	for _, depth := range []int{1, 4} {
		v, err := mean(func(c *sim.MemLinkConfig) { c.Chip.Cable.BucketDepth = depth })
		if err != nil {
			return nil, err
		}
		t.Set(fmt.Sprintf("bucket depth %d", depth), "ratio", v)
	}
	for _, sigs := range []int{1, 4} {
		v, err := mean(func(c *sim.MemLinkConfig) { c.Chip.Cable.InsertSigs = sigs })
		if err != nil {
			return nil, err
		}
		t.Set(fmt.Sprintf("%d insert signatures", sigs), "ratio", v)
	}
	return &Result{ID: "ablation", Table: t, Notes: []string{
		"paper §III-D: LineIDs cut pointer overhead 57.5% vs 40-bit tags; §III-B keeps inserts at 2 signatures to limit collisions",
	}}, nil
}

// meanWithTagPointers reruns the sweep subset on a remote geometry
// whose LineID width is inflated to tag width by the accounting: we
// emulate it by charging each reference 40 bits through the link layer.
func meanWithTagPointers(opt Options, names []string) (float64, error) {
	var vs []float64
	for _, name := range names {
		cfg := memLinkCfg(opt, name)
		cfg.WithMeters = false
		cfg.Chip.TagPointers = true
		res, err := sim.RunMemoryLink(cfg)
		if err != nil {
			return 0, err
		}
		vs = append(vs, res.Ratio("cable"))
	}
	return stats.Mean(vs), nil
}
