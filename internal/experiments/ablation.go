package experiments

import (
	"cable/internal/sim"
	"cable/internal/stats"
)

// Ablation isolates the design choices the paper argues for but does
// not sweep directly:
//
//   - pointer width: 17-bit RemoteLIDs vs 40-bit tags (§III-D claims a
//     57.5% pointer reduction; here the same payload stream is
//     re-accounted with tag-wide pointers),
//   - hash bucket depth (2 in the paper; deeper buckets admit more
//     candidates but more collisions),
//   - insert-signature count (2 in the paper; more signatures make
//     lines easier to find but pollute buckets, §III-B).
func Ablation(opt Options) (*Result, error) {
	t := stats.NewTable("Ablation: CABLE design choices", "ratio")
	names := sweepSubset(opt)

	// One variant per row; the (variant × benchmark) grid fans out as a
	// single flat cell set. The tag-pointer variant re-accounts the same
	// traffic with 40-bit tags per reference — the encoder decisions
	// shift too (wider pointers make references less attractive), which
	// the paper's WMT avoids.
	variants := []struct {
		row    string
		mutate func(*sim.MemLinkConfig)
	}{
		{"baseline (17b LIDs, depth 2, 2 sigs)", func(*sim.MemLinkConfig) {}},
		{"40b tag pointers (no WMT)", func(c *sim.MemLinkConfig) { c.Chip.TagPointers = true }},
		{"bucket depth 1", func(c *sim.MemLinkConfig) { c.Chip.Cable.BucketDepth = 1 }},
		{"bucket depth 4", func(c *sim.MemLinkConfig) { c.Chip.Cable.BucketDepth = 4 }},
		{"1 insert signatures", func(c *sim.MemLinkConfig) { c.Chip.Cable.InsertSigs = 1 }},
		{"4 insert signatures", func(c *sim.MemLinkConfig) { c.Chip.Cable.InsertSigs = 4 }},
	}
	results, errs := sweepCells(opt, len(variants), names, func(vi int, name string) (*sim.MemLinkResult, error) {
		cfg := memLinkCfg(opt, name)
		cfg.WithMeters = false
		variants[vi].mutate(&cfg)
		return runMemLink(opt, cfg)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var vs []float64
		for ni := range names {
			vs = append(vs, results[vi*len(names)+ni].Ratio("cable"))
		}
		t.Set(v.row, "ratio", stats.Mean(vs))
	}
	return &Result{ID: "ablation", Table: t, Notes: []string{
		"paper §III-D: LineIDs cut pointer overhead 57.5% vs 40-bit tags; §III-B keeps inserts at 2 signatures to limit collisions",
	}}, nil
}
