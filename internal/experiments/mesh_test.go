package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"cable/internal/fault"
)

// TestMeshDeterministicAcrossParallelism is the mesh experiment's
// acceptance contract: the rendered table, notes and the deterministic
// `-metrics` dump are byte-identical across -parallel 1 and 8, with
// the cell memo on or off, clean and under fault injection. The
// parallelism under test is the per-link worker pool inside each
// topology run — the mesh driver's benchmarks run serially.
func TestMeshDeterministicAcrossParallelism(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		base := Options{Quick: true, Parallelism: 1, DisableCellMemo: true}
		if faulty {
			base.Fault = fault.Config{BitRate: 1e-3, Seed: 3}
		}
		baseTables, baseMetrics := renderAll(t, []string{"mesh"}, base)

		for _, parallel := range []int{1, 8} {
			for _, memoOff := range []bool{false, true} {
				opt := base
				opt.Parallelism = parallel
				opt.DisableCellMemo = memoOff
				name := fmt.Sprintf("fault=%v parallel=%d memo=%v", faulty, parallel, !memoOff)
				tables, metrics := renderAll(t, []string{"mesh"}, opt)
				if tables != baseTables {
					t.Errorf("%s: tables differ from serial memo-off run:\n--- got ---\n%s\n--- want ---\n%s", name, tables, baseTables)
				}
				if !bytes.Equal(metrics, baseMetrics) {
					t.Errorf("%s: deterministic metrics dump differs from serial memo-off run", name)
				}
			}
		}
	}
}

// TestMeshCLIOverrides pins the -topology/-chips plumbing: the driver
// must honor the overrides and report them in its notes.
func TestMeshCLIOverrides(t *testing.T) {
	opt := Options{Quick: true, Parallelism: 4, Topology: "ring", Chips: 5}
	res, err := Mesh(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := "5-chip ring, 10 directed links, one CABLE end pair per link"
	if len(res.Notes) == 0 || res.Notes[0] != want {
		t.Fatalf("notes = %v, want first note %q", res.Notes, want)
	}
}
