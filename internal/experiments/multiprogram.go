package experiments

import (
	"fmt"

	"cable/internal/sim"
	"cable/internal/stats"
	"cable/internal/workload"
)

// Fig15 compares single-program compression with four co-running
// copies (SPECrate style): CABLE's cache-sized dictionary gains from
// cross-copy similarity; gzip's fixed window gains less and can lose.
func Fig15(opt Options) (*Result, error) {
	t := stats.NewTable("Fig 15: Single vs Multi4 (cooperative)",
		"gzip-single", "gzip-multi4", "cable-single", "cable-multi4")
	names := benchSubset(opt, true)
	if !opt.Quick {
		// Full mode still bounds the 4-copy runs: use the sweep
		// subset plus the paper's named callouts (gcc and namd).
		names = append(sweepSubset(opt), "namd")
	}
	runs := make([]*sim.MemLinkResult, len(names)*2)
	errs := make([]error, len(runs))
	cellRun(opt.workers(), len(runs), func(k int) {
		name := names[k/2]
		if k%2 == 0 {
			runs[k], errs[k] = runMemLink(opt, memLinkCfg(opt, name))
		} else {
			runs[k], errs[k] = runMemLink(opt, memLinkCfg(opt, name, name, name, name))
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for ni, name := range names {
		single, multi := runs[2*ni], runs[2*ni+1]
		t.Set(name, "gzip-single", single.Ratio("gzip"))
		t.Set(name, "gzip-multi4", multi.Ratio("gzip"))
		t.Set(name, "cable-single", single.Ratio("cable"))
		t.Set(name, "cable-multi4", multi.Ratio("cable"))
	}
	t.AddMeanRow("mean")
	gain := func(pfx string) float64 {
		return t.Get("mean", pfx+"-multi4") / t.Get("mean", pfx+"-single")
	}
	return &Result{ID: "fig15", Table: t, Notes: []string{
		fmt.Sprintf("measured multi4/single: cable %.2fx, gzip %.2fx", gain("cable"), gain("gzip")),
		"paper: CABLE improves ~60% in cooperative co-runs; gzip gains less (desynchronized phases)",
	}}, nil
}

// Fig16 runs the Table VI destructive mixes: per-program ratios in the
// mix normalized to that program's single-run ratio. gzip suffers
// dictionary pollution; CABLE's dictionary scales with the shared LLC.
func Fig16(opt Options) (*Result, error) {
	t := stats.NewTable("Fig 16: destructive mixes (ratio vs single-run)", "gzip", "cable")
	mixes := workload.Mixes[:]
	if opt.Quick {
		mixes = mixes[:3]
	}
	// Single-run ratios per unique benchmark and the mix runs are all
	// independent: fan them out as one flat cell grid (uniques first,
	// then one cell per mix).
	var uniques []string
	seen := map[string]bool{}
	for _, mix := range mixes {
		for _, name := range mix {
			if !seen[name] {
				seen[name] = true
				uniques = append(uniques, name)
			}
		}
	}
	runs := make([]*sim.MemLinkResult, len(uniques)+len(mixes))
	errs := make([]error, len(runs))
	cellRun(opt.workers(), len(runs), func(k int) {
		if k < len(uniques) {
			runs[k], errs[k] = runMemLink(opt, memLinkCfg(opt, uniques[k]))
		} else {
			mix := mixes[k-len(uniques)]
			runs[k], errs[k] = runMemLink(opt, memLinkCfg(opt, mix[0], mix[1], mix[2], mix[3]))
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	singles := map[string]map[string]float64{}
	for k, name := range uniques {
		singles[name] = map[string]float64{
			"gzip":  runs[k].Ratio("gzip"),
			"cable": runs[k].Ratio("cable"),
		}
	}
	for i, mix := range mixes {
		res := runs[len(uniques)+i]
		for _, scheme := range []string{"gzip", "cable"} {
			var rel float64
			per := res.PerProgram[scheme]
			for p, name := range mix {
				rel += per[p].Value() / singles[name][scheme]
			}
			t.Set(fmt.Sprintf("MIX%d", i), scheme, rel/4)
		}
	}
	t.AddMeanRow("mean")
	return &Result{ID: "fig16", Table: t, Notes: []string{
		"paper: gzip loses up to 25% under pollution; CABLE holds single-run ratios and can gain up to 35%",
	}}, nil
}
