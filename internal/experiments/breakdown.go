package experiments

import (
	"cable/internal/obs"
	"cable/internal/stats"
)

// Breakdown tabulates what the home-end encoder actually decided, per
// benchmark: the fraction of fill lines sent raw, standalone-compressed,
// or diff-compressed against 1/2/3 references, the fraction that skipped
// the signature search because standalone compression already met the
// threshold, and the mean payload bits per line. It is the coverage view
// behind the Fig 12 ratios — the same simulations, decomposed by
// encoding class instead of aggregated into one number.
func Breakdown(opt Options) (*Result, error) {
	cols := make([]string, 0, int(obs.NumClasses)+2)
	for c := obs.EncodeClass(0); c < obs.NumClasses; c++ {
		cols = append(cols, c.String())
	}
	cols = append(cols, "skip", "bits/line")
	t := stats.NewTable("Encoding-class breakdown per fill line", cols...)

	names := zeroDominantLast(benchSubset(opt, false))
	tracers := make([]*obs.Tracer, len(names))
	errs := make([]error, len(names))
	cellRun(opt.workers(), len(names), func(i int) {
		// Exact class counts live in the tracer aggregates; the ring
		// only keeps a bounded sample, so capacity is a memory knob,
		// not a coverage one.
		tr := obs.NewTracer(1024, 64)
		cfg := memLinkCfg(opt, names[i])
		cfg.WithMeters = false
		cfg.Trace = tr
		_, err := runMemLink(opt, cfg)
		tracers[i], errs[i] = tr, err
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for i, name := range names {
		tr := tracers[i]
		total := tr.Total()
		if total == 0 {
			continue
		}
		counts := tr.ClassCounts()
		for c := obs.EncodeClass(0); c < obs.NumClasses; c++ {
			t.Set(name, c.String(), float64(counts[c])/float64(total))
		}
		t.Set(name, "skip", float64(tr.ThresholdSkips())/float64(total))
		t.Set(name, "bits/line", float64(tr.PayloadBits())/float64(total))
	}
	t.AddMeanRow("mean")
	return &Result{ID: "breakdown", Table: t, Notes: []string{
		"fractions of fill lines per final encoding class; rows sum to 1 across raw..diff-3ref",
		"skip: encodes that bypassed the signature search (standalone already under threshold)",
		"bits/line: mean payload bits before flit quantization",
	}}, nil
}
