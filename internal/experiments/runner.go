package experiments

import (
	"runtime"
	"sync"
	"time"

	"cable/internal/obs"
)

// This file is the experiment-level half of the parallel execution
// layer: a bounded worker pool that fans independent drivers out
// across goroutines while delivering results in paper order. The
// cell-level half (cellRun) parallelizes the per-(benchmark, scheme)
// loops inside the heavy drivers; both halves share Options.Parallelism
// and both are determinism-preserving — a parallel run produces tables
// byte-identical to a serial one because every cell seeds its own
// generators and rows are committed in loop order.

// workers resolves Options.Parallelism to a concrete pool size.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runnerCounters tracks experiment/cell progress. Counts of completed
// work are deterministic; everything measuring time or concurrency is
// volatile so `-metrics` dumps stay byte-identical across -parallel
// settings.
type runnerCounters struct {
	experiments   *obs.Counter
	cells         *obs.Counter
	queueDepth    *obs.Gauge     // experiments admitted but not finished
	cellsInFlight *obs.Gauge     // cells currently executing
	experimentMS  *obs.Histogram // per-experiment wall-clock, ms
	cellMS        *obs.Histogram // per-cell wall-clock, ms
}

var (
	runnerCountersOnce   sync.Once
	sharedRunnerCounters runnerCounters
)

func runnerMetrics() *runnerCounters {
	runnerCountersOnce.Do(func() {
		r := obs.Default()
		sharedRunnerCounters = runnerCounters{
			experiments:   r.Counter("experiments.completed"),
			cells:         r.Counter("experiments.cells"),
			queueDepth:    r.VolatileGauge("experiments.queue_depth"),
			cellsInFlight: r.VolatileGauge("experiments.cells_in_flight"),
			experimentMS:  r.VolatileHistogram("experiments.experiment_ms"),
			cellMS:        r.VolatileHistogram("experiments.cell_ms"),
		}
	})
	return &sharedRunnerCounters
}

// StreamResult is one completed experiment as delivered by
// RunAllStream: the driver's Result (or error), plus the wall-clock
// time the driver itself took. Index is the position within the ids
// slice the stream was started with.
type StreamResult struct {
	Index   int
	ID      string
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// RunAll executes the given experiments across a bounded worker pool
// and returns their results in the order ids were given (paper order
// when ids comes from IDs()). The first driver error is returned after
// all workers drain; results for failed experiments are nil.
func RunAll(ids []string, opt Options) ([]*Result, error) {
	results := make([]*Result, len(ids))
	var firstErr error
	for sr := range RunAllStream(ids, opt) {
		if sr.Err != nil {
			if firstErr == nil {
				firstErr = sr.Err
			}
			continue
		}
		results[sr.Index] = sr.Result
	}
	return results, firstErr
}

// RunAllStream executes the given experiments across a bounded worker
// pool and streams results over the returned channel in ids order —
// each result is delivered as soon as it AND every earlier experiment
// have finished, so a consumer can print incrementally without ever
// reordering the report. The channel closes after the last result.
func RunAllStream(ids []string, opt Options) <-chan StreamResult {
	out := make(chan StreamResult)
	slots := make([]chan StreamResult, len(ids))
	for i := range slots {
		slots[i] = make(chan StreamResult, 1)
	}
	sem := make(chan struct{}, opt.workers())
	mx := runnerMetrics()
	for i, id := range ids {
		go func(i int, id string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			mx.queueDepth.Add(1)
			start := time.Now()
			res, err := Run(id, opt)
			elapsed := time.Since(start)
			mx.queueDepth.Add(-1)
			mx.experiments.Inc(obs.NextShard())
			mx.experimentMS.Observe(uint64(elapsed.Milliseconds()))
			slots[i] <- StreamResult{
				Index:   i,
				ID:      id,
				Result:  res,
				Err:     err,
				Elapsed: elapsed,
			}
		}(i, id)
	}
	go func() {
		defer close(out)
		for i := range slots {
			out <- <-slots[i]
		}
	}()
	return out
}

// cellRun executes fn(i) for every i in [0, n) across a pool of at
// most workers goroutines. It is the inner-parallelism primitive for
// drivers whose cells (one benchmark × scheme, one sweep point) are
// independent: fn writes into its own slot of a pre-sized result
// slice, and the caller commits slots into the stats.Table serially in
// loop order afterwards, which keeps row/column order — and therefore
// the rendered table bytes — identical to a serial run. With
// workers <= 1 the loop degenerates to a plain serial for, so the
// serial path is literally the same code.
func cellRun(workers, n int, fn func(int)) {
	mx := runnerMetrics()
	instrumented := func(shard uint32, i int) {
		mx.cellsInFlight.Add(1)
		start := time.Now()
		fn(i)
		mx.cellsInFlight.Add(-1)
		mx.cells.Inc(shard)
		mx.cellMS.Observe(uint64(time.Since(start).Milliseconds()))
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		shard := obs.NextShard()
		for i := 0; i < n; i++ {
			instrumented(shard, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			shard := obs.NextShard()
			for i := range next {
				instrumented(shard, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
