package experiments

import (
	"runtime"
	"sync"
	"time"
)

// This file is the experiment-level half of the parallel execution
// layer: a bounded worker pool that fans independent drivers out
// across goroutines while delivering results in paper order. The
// cell-level half (cellRun) parallelizes the per-(benchmark, scheme)
// loops inside the heavy drivers; both halves share Options.Parallelism
// and both are determinism-preserving — a parallel run produces tables
// byte-identical to a serial one because every cell seeds its own
// generators and rows are committed in loop order.

// workers resolves Options.Parallelism to a concrete pool size.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// StreamResult is one completed experiment as delivered by
// RunAllStream: the driver's Result (or error), plus the wall-clock
// time the driver itself took. Index is the position within the ids
// slice the stream was started with.
type StreamResult struct {
	Index   int
	ID      string
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// RunAll executes the given experiments across a bounded worker pool
// and returns their results in the order ids were given (paper order
// when ids comes from IDs()). The first driver error is returned after
// all workers drain; results for failed experiments are nil.
func RunAll(ids []string, opt Options) ([]*Result, error) {
	results := make([]*Result, len(ids))
	var firstErr error
	for sr := range RunAllStream(ids, opt) {
		if sr.Err != nil {
			if firstErr == nil {
				firstErr = sr.Err
			}
			continue
		}
		results[sr.Index] = sr.Result
	}
	return results, firstErr
}

// RunAllStream executes the given experiments across a bounded worker
// pool and streams results over the returned channel in ids order —
// each result is delivered as soon as it AND every earlier experiment
// have finished, so a consumer can print incrementally without ever
// reordering the report. The channel closes after the last result.
func RunAllStream(ids []string, opt Options) <-chan StreamResult {
	out := make(chan StreamResult)
	slots := make([]chan StreamResult, len(ids))
	for i := range slots {
		slots[i] = make(chan StreamResult, 1)
	}
	sem := make(chan struct{}, opt.workers())
	for i, id := range ids {
		go func(i int, id string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			res, err := Run(id, opt)
			slots[i] <- StreamResult{
				Index:   i,
				ID:      id,
				Result:  res,
				Err:     err,
				Elapsed: time.Since(start),
			}
		}(i, id)
	}
	go func() {
		defer close(out)
		for i := range slots {
			out <- <-slots[i]
		}
	}()
	return out
}

// cellRun executes fn(i) for every i in [0, n) across a pool of at
// most workers goroutines. It is the inner-parallelism primitive for
// drivers whose cells (one benchmark × scheme, one sweep point) are
// independent: fn writes into its own slot of a pre-sized result
// slice, and the caller commits slots into the stats.Table serially in
// loop order afterwards, which keeps row/column order — and therefore
// the rendered table bytes — identical to a serial run. With
// workers <= 1 the loop degenerates to a plain serial for, so the
// serial path is literally the same code.
func cellRun(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
