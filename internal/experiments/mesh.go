package experiments

import (
	"fmt"
	"time"

	"cable/internal/obs"
	"cable/internal/stats"
	"cable/internal/topo"
)

// This file is the scale-out topology experiment (`-exp mesh`): the
// discrete-event N-chip engine (internal/topo) run across the sweep
// benchmark subset on a configurable interconnect. The driver routes
// through runTopo, the memoizing front end that gives topology cells
// the same single-flight memo, metrics-delta replay and flight-recorder
// discipline as every other simulator cell.

func topoFlightKey(cfg topo.Config) string {
	d := cfg.Digest()
	return fmt.Sprintf("topo/%s%d/%s/%x", cfg.Shape, cfg.Chips, topoSourceLabel(cfg), d[:6])
}

// topoSourceLabel names a topology cell's workload source for flight
// keys: the benchmark, the spec, or the replayed capture set.
func topoSourceLabel(cfg topo.Config) string {
	switch {
	case cfg.Workload != nil:
		return "spec:" + cfg.Workload.Name
	case len(cfg.Replay) > 0:
		return "replay:" + cfg.Replay[0].Header.Benchmark
	default:
		return cfg.Benchmark
	}
}

// copyTopoResult deep-copies a topology result (PerLink is the only
// reference field).
func copyTopoResult(r *topo.Result) *topo.Result {
	if r == nil {
		return nil
	}
	out := *r
	out.PerLink = append([]topo.LinkStat(nil), r.PerLink...)
	return &out
}

// runTopo is the memoizing front end for topo.Run, mirroring
// runMemLink: fault injection is applied before Digest() so faulted
// cells key separately, computes run against a private registry whose
// non-volatile delta replays on every request, and the single-flight
// compute owner feeds the cell's registered flight recorder.
func runTopo(opt Options, cfg topo.Config) (*topo.Result, error) {
	cfg.Fault = opt.Fault
	// Parallelism partitions links across workers and is excluded from
	// the digest: it cannot change any output bit.
	cfg.Parallelism = opt.workers()
	mx := memoMetrics()
	shard := obs.NextShard()
	if opt.DisableCellMemo || cfg.Metrics != nil || cfg.Recorder != nil {
		mx.bypass.Inc(shard)
		if opt.Flight != nil && cfg.Recorder == nil {
			cfg.Recorder = opt.Flight.Recorder(topoFlightKey(cfg))
		}
		return topo.Run(cfg)
	}
	e, owner := memo.lookup(cfg.Digest())
	if !owner {
		<-e.ready
		e.finish(mx, true, shard)
		if opt.Flight != nil {
			opt.Flight.MemoEvent(true)
		}
		return copyTopoResult(e.topo), e.err
	}
	mx.misses.Inc(shard)
	reg := obs.NewRegistry()
	scoped := cfg
	scoped.Metrics = reg
	if opt.Flight != nil {
		scoped.Recorder = opt.Flight.Recorder(topoFlightKey(cfg))
		opt.Flight.MemoEvent(false)
	}
	start := time.Now()
	res, err := topo.Run(scoped)
	mx.computeMS.Observe(uint64(time.Since(start).Milliseconds()))
	e.topo = copyTopoResult(res)
	e.err = err
	e.seal(reg)
	e.finish(mx, false, shard)
	return copyTopoResult(e.topo), err
}

// meshConfig builds the topology cell for one benchmark at the
// experiment's scale.
func meshConfig(opt Options, benchmark string) topo.Config {
	cfg := topo.DefaultConfig(benchmark)
	if opt.Topology != "" {
		cfg.Shape = opt.Topology
	}
	if opt.Chips > 0 {
		cfg.Chips = opt.Chips
	} else if opt.Quick {
		cfg.Chips = 8
	}
	if opt.Quick {
		cfg.Transfers = 16000
		cfg.HomeBytes = 256 << 10
		cfg.RemoteBytes = 64 << 10
	}
	return cfg
}

// Mesh regenerates the scale-out study: CABLE link compression, remote
// dictionary hit rate, link utilization and raw/CABLE makespan speedup
// on an N-chip topology under contention. Benchmarks run serially —
// the per-link partition inside each topology run is where the worker
// pool goes (20–48 directed links versus 4–8 benchmarks).
func Mesh(opt Options) (*Result, error) {
	if opt.Workload != nil || len(opt.Replay) > 0 {
		return meshFromSource(opt)
	}
	names := sweepSubset(opt)
	var shape string
	var chips, links, w, h int
	t := stats.NewTable("Mesh: N-chip topology scale-out", "cable", "hitrate", "util", "speedup")
	for _, name := range names {
		res, err := runTopo(opt, meshConfig(opt, name))
		if err != nil {
			return nil, err
		}
		shape, chips, links, w, h = res.Shape, res.Chips, res.Links, res.Width, res.Height
		t.Set(name, "cable", res.Ratio())
		hitrate := 0.0
		if res.LinkTransfers > 0 {
			hitrate = float64(res.RemoteHits) / float64(res.LinkTransfers)
		}
		t.Set(name, "hitrate", hitrate)
		t.Set(name, "util", res.MeanUtilization())
		t.Set(name, "speedup", res.Speedup())
	}
	t.AddMeanRow("mean")
	grid := ""
	if shape == topo.ShapeMesh {
		grid = fmt.Sprintf(" (%dx%d, XY routing)", w, h)
	}
	return &Result{ID: "mesh", Table: t, Notes: []string{
		fmt.Sprintf("%d-chip %s%s, %d directed links, one CABLE end pair per link", chips, shape, grid, links),
		"speedup = raw/CABLE makespan from the discrete-event replay; >1 means compression relieved queueing",
		"hitrate = header-only transfers where the link's remote cache still held the line",
	}}, nil
}

// meshFromSource is the spec/replay variant of the scale-out study: a
// single topology run driven by the -workload-spec mix (every chip a
// variant-decorated instance) or by -replay captures (one per chip),
// instead of the benchmark sweep.
func meshFromSource(opt Options) (*Result, error) {
	cfg := meshConfig(opt, "")
	var row string
	if opt.Workload != nil {
		cfg.Workload = opt.Workload
		row = opt.Workload.Name
	} else {
		// One capture per chip: the capture count is the chip count.
		cfg.Replay = opt.Replay
		cfg.Chips = len(opt.Replay)
		row = "replay:" + opt.Replay[0].Header.Benchmark
	}
	res, err := runTopo(opt, cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Mesh: N-chip topology scale-out", "cable", "hitrate", "util", "speedup")
	t.Set(row, "cable", res.Ratio())
	hitrate := 0.0
	if res.LinkTransfers > 0 {
		hitrate = float64(res.RemoteHits) / float64(res.LinkTransfers)
	}
	t.Set(row, "hitrate", hitrate)
	t.Set(row, "util", res.MeanUtilization())
	t.Set(row, "speedup", res.Speedup())
	grid := ""
	if res.Shape == topo.ShapeMesh {
		grid = fmt.Sprintf(" (%dx%d, XY routing)", res.Width, res.Height)
	}
	source := topoSourceLabel(cfg)
	if opt.Workload != nil {
		source = fmt.Sprintf("spec %q, %d clients per chip", opt.Workload.Name, len(opt.Workload.Clients))
	}
	return &Result{ID: "mesh", Table: t, Notes: []string{
		fmt.Sprintf("%d-chip %s%s, %d directed links, one CABLE end pair per link", res.Chips, res.Shape, grid, res.Links),
		"source: " + source,
		"speedup = raw/CABLE makespan from the discrete-event replay; >1 means compression relieved queueing",
	}}, nil
}
