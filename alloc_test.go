package cable_test

import (
	"testing"

	"cable"
)

// TestEncodeFillAllocs pins the steady-state encode path at zero
// allocations per line — with the metrics registry enabled, since the
// counters are always on. BenchmarkEncodeFill reports the same number,
// but a -benchmem reading is advisory; this test makes regressions
// fail `go test ./...`.
func TestEncodeFillAllocs(t *testing.T) {
	chip, addrs := warmChip(t)
	ways := chip.LLC.Config().Ways
	// A few warm-up rounds first: lazily grown scratch buffers (ranker
	// slices, compressor dictionaries) are allowed to size themselves
	// before the measured window.
	var i int
	encodeSome := func() {
		for n := 0; n < 256; n++ {
			addr := addrs[i%len(addrs)]
			if _, _, err := chip.Home.EncodeFill(addr, cable.Shared, i%ways); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	encodeSome()
	if avg := testing.AllocsPerRun(8, encodeSome); avg != 0 {
		t.Fatalf("EncodeFill allocated %.2f times per 256 lines; the hot path must stay allocation-free", avg)
	}
}

// TestRunMemoryLinkAllocBudget pins the whole-simulation allocation
// count, BenchmarkMemLinkProtocol's configuration measured as a hard
// test. The budget is the issue's target (20% of the 37,455 allocs/op
// baseline before the scratch-reuse work); the measured value is ~4.6k,
// so the margin absorbs noise without ever letting a per-line
// allocation (≥2000 allocs here) sneak back into a hot path.
func TestRunMemoryLinkAllocBudget(t *testing.T) {
	const budget = 7492
	cfg := cable.DefaultMemoryLinkConfig("dealII")
	cfg.AccessesPerProgram = 2000
	cfg.WithMeters = false
	cfg.Chip.LLCBytes = 256 << 10
	cfg.Chip.L4Bytes = 1 << 20
	avg := testing.AllocsPerRun(5, func() {
		if _, err := cable.RunMemoryLink(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("RunMemoryLink allocated %.0f times per run; budget is %d", avg, budget)
	}
}

// TestRunMultiChipAllocBudget pins the coherence simulation's
// allocation count after the directory-state recycling work: the
// write-version map is pooled, caches and CABLE ends release their
// backings, and every marshal goes through the run's scratch writer.
// Measured ~2.4k allocs/run at this configuration (down from ~10k when
// each transfer marshaled into a fresh buffer); the budget leaves room
// for noise while catching any per-access allocation (≥5000 here)
// creeping back.
func TestRunMultiChipAllocBudget(t *testing.T) {
	const budget = 4000
	cfg := cable.DefaultMultiChipConfig("dealII")
	cfg.Accesses = 5000
	cfg.WithMeters = false
	cfg.LLCBytes = 256 << 10
	avg := testing.AllocsPerRun(5, func() {
		if _, err := cable.RunMultiChip(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("RunMultiChip allocated %.0f times per run; budget is %d", avg, budget)
	}
}

// TestRunNonInclusiveAllocBudget pins the non-inclusive Home Agent
// simulation the same way: its write-version map is pooled, both cache
// backings and CABLE-end tables are released at run end, and every
// marshal rides the run's scratch writer. Measured ~2.0k allocs/run at
// this configuration; the budget leaves room for noise while catching
// any per-access allocation (≥5000 here) creeping back.
func TestRunNonInclusiveAllocBudget(t *testing.T) {
	const budget = 3500
	cfg := cable.DefaultNonInclusiveConfig("dealII")
	cfg.Accesses = 5000
	cfg.RemoteBytes = 256 << 10
	cfg.HomeBytes = 512 << 10
	avg := testing.AllocsPerRun(5, func() {
		if _, err := cable.RunNonInclusive(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("RunNonInclusive allocated %.0f times per run; budget is %d", avg, budget)
	}
}
