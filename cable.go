// Package cable is a library implementation of CABLE — a CAche-Based
// Link Encoder for bandwidth-starved manycores (Nguyen, Fuchs,
// Wentzlaff; MICRO 2018).
//
// CABLE compresses point-to-point links between coherent caches by
// re-purposing the data already resident in those caches as a massive,
// scalable compression dictionary. The larger "home" cache (an off-chip
// DRAM-buffer L4, or a home node's LLC across a coherence link) finds
// cache lines similar to the one being sent, compresses the line as a
// DIFF against up to three reference lines known — via its Way-Map
// Table — to also be resident in the smaller "remote" cache, and
// transmits short index+way pointers (RemoteLIDs) instead of raw data.
//
// # Layers
//
// The package exposes three layers:
//
//   - The protocol layer: NewLink builds a HomeEnd/RemoteEnd pair over
//     two caches you drive yourself (see examples/quickstart).
//   - The simulation layer: RunMemoryLink, RunMultiChip and RunTiming
//     reproduce the paper's evaluation systems over synthetic SPEC2006
//     workload models (see examples/memlink and examples/multichip).
//   - The experiment layer: RunExperiment regenerates any table or
//     figure of the paper by id (see cmd/cablereport).
//
// All compression engines are bit-exact: every payload decodes to the
// original line, and the simulators verify this on every transfer.
package cable

import (
	"io"
	"net/http"

	"cable/internal/cache"
	"cable/internal/codec"
	"cable/internal/compress"
	"cable/internal/core"
	"cable/internal/experiments"
	"cable/internal/fault"
	"cable/internal/link"
	"cable/internal/obs"
	"cable/internal/sim"
	"cable/internal/topo"
	"cable/internal/trace"
	"cable/internal/workload"
	"cable/internal/workload/spec"
)

// Cache is a set-associative, coherent cache model; CABLE link ends
// attach to a pair of them.
type Cache = cache.Cache

// CacheConfig describes a cache geometry.
type CacheConfig = cache.Config

// LineID identifies a cache line by physical position (index + way) —
// the compact pointer CABLE transmits instead of address tags.
type LineID = cache.LineID

// State is a cache-coherence state. Only Shared lines serve as
// compression references.
type State = cache.State

// Coherence states.
const (
	Invalid   = cache.Invalid
	Shared    = cache.Shared
	Exclusive = cache.Exclusive
	Modified  = cache.Modified
)

// Config holds the CABLE framework parameters (§VI-A of the paper):
// search width, data access count, reference count, hash table sizing,
// the delegated engine, and the standalone-compression threshold.
type Config = core.Config

// Payload is the unit CABLE transmits: a 1-bit flag, a 2-bit reference
// count, the RemoteLIDs, and the variable-length DIFF.
type Payload = core.Payload

// HomeEnd is the compressing side of a link (the larger cache).
type HomeEnd = core.HomeEnd

// RemoteEnd is the decompressing side of a link (the smaller cache).
type RemoteEnd = core.RemoteEnd

// BatchFill is one request of a batched HomeEnd.EncodeFills call.
type BatchFill = core.BatchFill

// FillLatency is the cycle cost of one encoded fill (§IV-D pipeline).
type FillLatency = core.FillLatency

// Engine is a pluggable per-line compression algorithm; CABLE is a
// framework and delegates the actual DIFF coding to one of these.
type Engine = compress.Engine

// LinkConfig describes the physical link (width, frequency, packing).
type LinkConfig = link.Config

// DefaultConfig returns the paper's baseline CABLE parameters
// (16 search signatures, 6 data accesses, 3 references, 2-deep
// full-sized hash table, LBE engine, 16x standalone threshold).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultLinkConfig returns the paper's 16-bit 9.6 GHz off-chip link.
func DefaultLinkConfig() LinkConfig { return link.DefaultConfig() }

// NewCache builds a cache; geometry must be power-of-two sets.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cache.New(cfg), nil
}

// NewLink builds a CABLE pipeline between a home cache and a remote
// cache. The home cache must be at least as large (in sets) as the
// remote cache and is assumed inclusive of it.
func NewLink(cfg Config, home, remote *Cache) (*HomeEnd, *RemoteEnd, error) {
	he, err := core.NewHomeEnd(cfg, home, remote)
	if err != nil {
		return nil, nil, err
	}
	re, err := core.NewRemoteEnd(cfg, remote)
	if err != nil {
		return nil, nil, err
	}
	return he, re, nil
}

// NewEngine builds a compression engine by name: "cpack", "cpack128",
// "bdi", "fpc", "lbe", "lbe256", "zero", "oracle" or "gzip-seeded".
func NewEngine(name string) (Engine, error) { return compress.NewEngine(name) }

// Engines lists the built-in engine names.
func Engines() []string {
	return []string{"bdi", "cpack", "cpack128", "fpc", "lbe", "lbe256", "zero", "oracle", "gzip-seeded"}
}

// Benchmarks lists the synthetic SPEC2006 workload models.
func Benchmarks() []string { return workload.Names() }

// MemoryLinkConfig configures the functional off-chip memory-link
// simulation (LLC + L4 + CABLE + baseline compressors).
type MemoryLinkConfig = sim.MemLinkConfig

// MemoryLinkResult holds per-scheme compression ratios.
type MemoryLinkResult = sim.MemLinkResult

// DefaultMemoryLinkConfig returns the Table IV memory-link setup for
// the given co-running benchmarks.
func DefaultMemoryLinkConfig(benchmarks ...string) MemoryLinkConfig {
	return sim.DefaultMemLinkConfig(benchmarks...)
}

// RunMemoryLink runs the functional memory-link simulation.
func RunMemoryLink(cfg MemoryLinkConfig) (*MemoryLinkResult, error) {
	return sim.RunMemoryLink(cfg)
}

// MultiChipConfig configures the 4-chip NUMA coherence simulation.
type MultiChipConfig = sim.MultiChipConfig

// MultiChipResult holds coherence-link compression ratios.
type MultiChipResult = sim.MultiChipResult

// DefaultMultiChipConfig returns the paper's 4-node NUMA setup.
func DefaultMultiChipConfig(benchmark string) MultiChipConfig {
	return sim.DefaultMultiChipConfig(benchmark)
}

// RunMultiChip runs the coherence-link simulation.
func RunMultiChip(cfg MultiChipConfig) (*MultiChipResult, error) {
	return sim.RunMultiChip(cfg)
}

// TimingConfig configures the cycle-approximate throughput/latency
// simulation.
type TimingConfig = sim.TimingConfig

// TimingResult reports IPC, throughput, utilization and energy counts.
type TimingResult = sim.TimingResult

// DefaultTimingConfig returns the Table IV timing setup.
func DefaultTimingConfig(scheme, benchmark string) TimingConfig {
	return sim.DefaultTimingConfig(scheme, benchmark)
}

// RunTiming runs the timing simulation.
func RunTiming(cfg TimingConfig) (*TimingResult, error) {
	return sim.RunTiming(cfg)
}

// WayMap abstracts the way-map table; SuperWMT pools one across links.
type WayMap = core.WayMap

// SuperWMT is the §IV-D extension: a single capacity-managed way-map
// pool competitively shared by several links, in place of per-link
// full WMTs.
type SuperWMT = core.SuperWMT

// NewSuperWMT builds a pooled way-map with roughly capacity entries.
func NewSuperWMT(capacity, ways int, home, remote *Cache) *SuperWMT {
	return core.NewSuperWMT(capacity, ways, home, remote)
}

// NewLinkWithWayMap builds a CABLE pipeline whose home end uses an
// explicit way-map — typically a SuperWMT view.
func NewLinkWithWayMap(cfg Config, home, remote *Cache, wm WayMap) (*HomeEnd, *RemoteEnd, error) {
	he, err := core.NewHomeEndWithWayMap(cfg, home, remote, wm)
	if err != nil {
		return nil, nil, err
	}
	re, err := core.NewRemoteEnd(cfg, remote)
	if err != nil {
		return nil, nil, err
	}
	return he, re, nil
}

// NonInclusiveConfig configures the §IV-C non-inclusive Home Agent
// simulation (opportunistic compression, write-backs uncompressed).
type NonInclusiveConfig = sim.NonInclusiveConfig

// NonInclusiveResult reports the opportunistic-compression outcome.
type NonInclusiveResult = sim.NonInclusiveResult

// DefaultNonInclusiveConfig returns a Haswell-EP-style setup.
func DefaultNonInclusiveConfig(benchmark string) NonInclusiveConfig {
	return sim.DefaultNonInclusiveConfig(benchmark)
}

// RunNonInclusive runs the non-inclusive simulation.
func RunNonInclusive(cfg NonInclusiveConfig) (*NonInclusiveResult, error) {
	return sim.RunNonInclusive(cfg)
}

// TopologyConfig configures the discrete-event N-chip topology
// simulation: chips wired as a ring, 2D mesh (XY routing) or star,
// with one CABLE home/remote end pair per directed link and
// shared-home contention queues at every chip's encoder.
type TopologyConfig = topo.Config

// TopologyResult reports a topology run: aggregate compression,
// remote-dictionary hit rate, raw vs CABLE makespans, and per-link
// statistics.
type TopologyResult = topo.Result

// TopologyLinkStat is one directed link's row of a TopologyResult.
type TopologyLinkStat = topo.LinkStat

// Topology shapes accepted by TopologyConfig.Shape.
const (
	TopologyRing = topo.ShapeRing
	TopologyMesh = topo.ShapeMesh
	TopologyStar = topo.ShapeStar
)

// DefaultTopologyConfig returns the 16-chip mesh setup the scale-out
// study uses.
func DefaultTopologyConfig(benchmark string) TopologyConfig {
	return topo.DefaultConfig(benchmark)
}

// RunTopology runs the discrete-event topology simulation. Results are
// bit-identical at any cfg.Parallelism.
func RunTopology(cfg TopologyConfig) (*TopologyResult, error) {
	return topo.Run(cfg)
}

// WorkloadSpec is a declarative multi-client workload (JSON DSL): a
// named mix of clients with rate fractions, arrival processes
// (poisson, bursty, weibull — seeded and deterministic), per-client
// content models and phase changes over virtual time. Feed one to the
// simulators via ExperimentOptions.Workload,
// MemoryLinkConfig.Workload or TopologyConfig.Workload.
type WorkloadSpec = spec.Workload

// ParseWorkloadSpec compiles a workload spec from its JSON encoding.
func ParseWorkloadSpec(data []byte) (*WorkloadSpec, error) { return spec.Parse(data) }

// LoadWorkloadSpec reads and compiles a workload-spec JSON file (the
// `-workload-spec` CLI flag; see examples/workloads).
func LoadWorkloadSpec(path string) (*WorkloadSpec, error) { return spec.Load(path) }

// RecordedTrace is a fully-loaded cabletrace capture: header plus
// decoded accesses, replayable through the simulators via
// ExperimentOptions.Replay and the sim/topo config Replay fields.
type RecordedTrace = trace.Trace

// LoadTrace reads a capture file written by cabletrace (or
// spec.RecordClients); both the current CBLT0002 format and the legacy
// CBLT0001 format load.
func LoadTrace(path string) (*RecordedTrace, error) { return trace.Load(path) }

// FaultConfig describes deterministic link fault injection (per-bit
// flip rate, truncation rate, seed). The zero value injects nothing
// and keeps every simulation byte-identical to a fault-free build; a
// non-zero rate degrades corrupted transfers to counted decode errors
// and raw-transfer fallbacks instead of panics.
type FaultConfig = fault.Config

// ExperimentOptions tune experiment scale (Quick shrinks runs for CI).
type ExperimentOptions = experiments.Options

// ExperimentResult is one regenerated table/figure.
type ExperimentResult = experiments.Result

// Experiments lists every reproducible table/figure id.
func Experiments() []string { return experiments.IDs() }

// DescribeExperiment returns the one-line description of an id.
func DescribeExperiment(id string) string { return experiments.Describe(id) }

// RunExperiment regenerates one table/figure of the paper.
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opt)
}

// ExperimentStream is one completed experiment as delivered by
// StreamExperiments: the result (or error) plus driver wall-clock time.
type ExperimentStream = experiments.StreamResult

// RunExperiments regenerates the given tables/figures across a worker
// pool bounded by opt.Parallelism (GOMAXPROCS when zero), returning
// results in ids order. Parallel runs are bit-identical to serial ones.
func RunExperiments(ids []string, opt ExperimentOptions) ([]*ExperimentResult, error) {
	return experiments.RunAll(ids, opt)
}

// StreamExperiments is RunExperiments with incremental delivery: each
// result arrives on the channel as soon as it and every earlier id have
// finished, so consumers can render progressively without reordering.
func StreamExperiments(ids []string, opt ExperimentOptions) <-chan ExperimentStream {
	return experiments.RunAllStream(ids, opt)
}

// EncodeTracer records per-encode decisions on a home end: exact class
// counts plus a sampled ring of recent records. Attach one via
// MemoryLinkConfig.Trace or HomeEnd.SetTracer.
type EncodeTracer = obs.Tracer

// NewEncodeTracer builds a tracer keeping capacity records, recording
// every sample-th encode into the ring (aggregates count everything).
func NewEncodeTracer(capacity, sample int) *EncodeTracer {
	return obs.NewTracer(capacity, sample)
}

// WriteMetrics dumps the global metrics registry as indented JSON.
// With includeVolatile false the dump is deterministic: timing and
// concurrency metrics are excluded, so two runs of the same workload
// produce byte-identical output at any parallelism.
func WriteMetrics(w io.Writer, includeVolatile bool) error {
	return obs.Default().WriteJSON(w, includeVolatile)
}

// WriteMetricsFile writes the WriteMetrics dump to a file.
func WriteMetricsFile(path string, includeVolatile bool) error {
	return obs.Default().WriteJSONFile(path, includeVolatile)
}

// ResetMetrics zeroes every metric in the global registry (metric
// identities survive, so held counter handles keep working).
func ResetMetrics() { obs.Default().Reset() }

// MetricValue reads one counter's current total from the global
// registry (0 when the counter does not exist yet). The CLIs use the
// delta of "core.source_bits" across a run for their GB/s summary line.
func MetricValue(name string) uint64 {
	return obs.Default().Snapshot(false).Counters[name]
}

// MetricsHandler serves the live registry over HTTP: /metrics (JSON),
// /metrics.txt, and the standard /debug/pprof endpoints. Backs the
// cablesim -http flag. Use MetricsHandlerFor to additionally serve a
// flight recorder's /windows, /timeline, and /health dashboard.
func MetricsHandler() http.Handler { return MetricsHandlerFor(nil) }

// MetricsHandlerFor is MetricsHandler plus the flight recorder
// endpoints: /windows (windowed time series), /timeline (event
// timeline), and /health (self-contained HTML link-health dashboard
// with per-link sparklines and Go runtime health tiles). A nil flight
// serves 404 on /windows and /timeline; /health still renders the
// runtime tiles.
func MetricsHandlerFor(f *Flight) http.Handler { return obs.HandlerWith(obs.Default(), f) }

// Flight collects one virtual-time flight recorder per simulation cell
// of an experiment run. Attach one via ExperimentOptions.Flight, then
// export with WriteWindowsFile / WriteTimelineFile (deterministic with
// includeVolatile false: byte-identical at any Parallelism, memo on or
// off, any GOMAXPROCS) or serve it live via MetricsHandlerFor.
type Flight = obs.Flight

// FlightConfig sizes flight recorders: virtual-time window length,
// ring bounds, and optional volatile wall-clock span durations.
type FlightConfig = obs.FlightConfig

// FlightRecorder is one simulation's virtual-time flight recorder:
// per-link windowed counters plus a span/event timeline. Attach one
// directly via the sim configs' Recorder fields, or let a Flight manage
// one per cell.
type FlightRecorder = obs.Recorder

// NewFlight builds a flight collection whose recorders share cfg.
func NewFlight(cfg FlightConfig) *Flight { return obs.NewFlight(cfg) }

// NewFlightRecorder builds a standalone flight recorder.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder { return obs.NewRecorder(cfg) }

// StreamEncoder compresses a byte stream through a CABLE link: an
// io.Writer whose dictionary is a cache the decoder mirrors in
// lock-step (see internal/codec for the wire format). Close emits the
// tail frame; Reset re-arms the instance for another stream, making
// encoders sync.Pool-friendly.
type StreamEncoder = codec.Encoder

// StreamDecoder reconstructs the plaintext from a StreamEncoder's
// output: an io.Reader configured entirely by the stream header.
type StreamDecoder = codec.Decoder

// StreamOptions configures NewStreamEncoder.
type StreamOptions = codec.Options

// StreamCodecStats counts one stream's traffic on either endpoint.
type StreamCodecStats = codec.StreamStats

// ErrBadFrame marks structural damage to a codec stream's framing.
// Payload-level damage surfaces as ErrTruncatedPayload, ErrCRCMismatch,
// ErrCorruptDiff or ErrBadReference instead.
var ErrBadFrame = codec.ErrBadFrame

// NewStreamEncoder builds a streaming encoder writing to w. A zero
// Options selects a 1 MB, 8-way dictionary of 64-byte lines, the "lbe"
// engine, and 32-line frames.
func NewStreamEncoder(w io.Writer, o StreamOptions) (*StreamEncoder, error) {
	return codec.NewEncoder(w, o)
}

// NewStreamDecoder builds a streaming decoder reading from r.
func NewStreamDecoder(r io.Reader) *StreamDecoder { return codec.NewDecoder(r) }
