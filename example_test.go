package cable_test

import (
	"fmt"
	"log"

	"cable"
)

// ExampleNewLink walks one line pair through a CABLE link: the second
// fill is similar to the first and travels as a DIFF plus a reference
// pointer instead of 64 raw bytes.
func ExampleNewLink() {
	home, _ := cable.NewCache(cable.CacheConfig{Name: "l4", SizeBytes: 256 << 10, Ways: 16, LineSize: 64})
	remote, _ := cable.NewCache(cable.CacheConfig{Name: "llc", SizeBytes: 64 << 10, Ways: 8, LineSize: 64})
	he, re, err := cable.NewLink(cable.DefaultConfig(), home, remote)
	if err != nil {
		log.Fatal(err)
	}

	lineA := make([]byte, 64)
	for i := range lineA {
		lineA[i] = byte(i*37 + 11)
	}
	lineB := append([]byte(nil), lineA...)
	lineB[24] ^= 0xFF // one edited byte

	home.Insert(0x1000, lineA, cable.Shared)
	home.Insert(0x09A7, lineB, cable.Shared)

	for _, addr := range []uint64{0x1000, 0x09A7} {
		idx := remote.IndexOf(addr)
		way := remote.VictimWay(idx)
		p, _, _ := he.EncodeFill(addr, cable.Shared, way)
		data, _ := re.DecodeFill(p)
		remote.InsertAt(addr, data, cable.Shared, way)
		re.OnFillInstalled(cable.LineID{Index: idx, Way: way}, data, cable.Shared)
		fmt.Printf("refs=%d\n", len(p.Refs))
	}
	// Output:
	// refs=0
	// refs=1
}

// ExampleNewEngine compresses a line directly with a pluggable engine.
func ExampleNewEngine() {
	e, _ := cable.NewEngine("lbe")
	zero := make([]byte, 64)
	enc := e.Compress(zero, nil)
	dec, _ := e.Decompress(enc, nil, 64)
	fmt.Printf("%d bits, lossless=%v\n", enc.NBits, string(dec) == string(zero))
	// Output:
	// 6 bits, lossless=true
}
